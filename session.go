package maimon

import (
	"context"
	"errors"
	"iter"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/entropy"
	"repro/internal/info"
	"repro/internal/obs"
	"repro/internal/pli"
)

// Progress is a structured progress event emitted from the mining loops
// when WithProgress is set: phase ("minseps", "mvds", "schemes"), pairs
// done/total, separators and candidate MVDs evaluated, full MVDs and
// schemes streamed so far. Events are cumulative snapshots; the callback
// runs synchronously on the mining goroutine and must be fast.
type Progress = core.Progress

// PLIConfig tunes the PLI partition cache behind a session's entropy
// oracle: BlockSize is the paper's L (Sec. 6.3), MaxBytes is the memory
// budget eviction enforces (0 = unlimited; WithMemoryBudget is the
// shorthand), Policy picks the eviction policy (WithEvictionPolicy is
// the shorthand), Shards overrides the cache's shard count, and
// MaxEntries is the deprecated entry-count cap.
type PLIConfig = pli.Config

// MineTrace is the stage-level record of one mining call: one phase per
// top-level mining phase, each with wall time, the entropy/PLI work it
// caused (as counter deltas), and a per-stage breakdown (separator
// mining, full-MVD expansion, graph build, schema synthesis). Every
// stage count and entropy-level count in a trace is deterministic
// across WithWorkers settings — a parallel mine performs exactly a
// serial mine's work — so two traces of the same mine differ only in
// durations and PLI-layer scheduling detail (hit/miss split, intersect
// and byte counts); MineTrace.CountsOnly reduces a trace to the
// invariant projection.
// Session.Trace returns the last mine's trace; WithTrace threads a
// caller-owned trace through one call.
type MineTrace = obs.MineTrace

// PhaseTrace, StageTrace and OracleDelta are the components of a
// MineTrace.
type (
	PhaseTrace  = obs.PhaseTrace
	StageTrace  = obs.StageTrace
	OracleDelta = obs.OracleDelta
)

// Stats is a snapshot of a session's entropy-oracle counters: H calls,
// memo hits, MI evaluations, and the PLI cache counters beneath them. The
// paper calls entropy computation "the most expensive operation of
// Maimon"; these numbers are its true cost, and HCached growing across
// mines is the signature of warm-state reuse.
type Stats = entropy.Stats

// DefaultPLIConfig mirrors the paper's implementation choices (L = 10,
// unlimited cache).
func DefaultPLIConfig() PLIConfig { return pli.DefaultConfig() }

// config is the resolved option set. A Session keeps the Open-time config
// as its per-call defaults; each mining call starts from a copy.
type config struct {
	epsilon       float64
	timeout       time.Duration
	maxSchemes    int
	pruning       bool
	workers       int // 0 = GOMAXPROCS (the WithWorkers default)
	pairs         [][2]int
	pliCfg        PLIConfig
	entropyBudget int64 // entropy-memo byte budget; 0 = unlimited
	progress      func(Progress)
	trace         *MineTrace
}

func defaultSessionConfig() config {
	return config{pruning: true, pliCfg: pli.DefaultConfig()}
}

func (c config) with(opts []Option) config {
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Option configures Open and the Session mining methods. Options given to
// Open become the session's defaults; options given to a mining call
// override them for that call only.
type Option func(*config)

// WithEpsilon sets the approximation threshold ε ≥ 0 in bits; 0 (the
// default) mines exact dependencies.
func WithEpsilon(eps float64) Option { return func(c *config) { c.epsilon = eps } }

// WithTimeout bounds one mining call's total wall-clock time across both
// phases; zero (the default) means unlimited. It is implemented as a
// single context.WithTimeout layered over the caller's context — the
// session path arms exactly one timer, so whichever of the caller's
// deadline and this timeout is earlier fires, surfacing as
// ErrInterrupted.
func WithTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithMaxSchemes bounds how many schemes MineSchemes returns and
// SchemeSeq yields (0 = all, the default).
func WithMaxSchemes(n int) Option { return func(c *config) { c.maxSchemes = n } }

// WithPruning toggles the pairwise-consistency optimization (paper App.
// 12.3). It is on by default; turning it off is intended for ablation
// only.
func WithPruning(on bool) Option { return func(c *config) { c.pruning = on } }

// WithPairs restricts MVDMiner to the given attribute pairs; nil (the
// default) mines all pairs.
func WithPairs(pairs [][2]int) Option { return func(c *config) { c.pairs = pairs } }

// WithWorkers sets the fan-out of the parallel mining pipeline: attribute
// pairs (the paper's Fig. 3 loop) are distributed across n worker miners
// over the session's shared single-flight oracle, and ASMiner's
// incompatibility-graph build is striped the same way. Results are
// deterministic — identical to a serial mine of the same relation.
//
// The default (n = 0, or any n <= 0) is runtime.GOMAXPROCS(0). n = 1
// mines serially, as the paper's single-threaded system does. Sessions
// opened by the deprecated one-shot wrappers always mine serially: their
// oracle skips the concurrency machinery.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithPLIConfig sets the PLI cache configuration of the session's entropy
// oracle. It is honored by Open only — the oracle is built once per
// session — and ignored by the per-call mining methods.
func WithPLIConfig(cfg PLIConfig) Option { return func(c *config) { c.pliCfg = cfg } }

// WithMemoryBudget bounds the bytes the session's PLI partition cache
// retains (the entropy memo is governed separately — see
// WithEntropyBudget). When mining pushes the cache past the budget, cold
// partitions are evicted — per WithEvictionPolicy, single-attribute
// partitions always pinned — and recomputed if needed again, so a budget
// trades recomputation for residency and never changes mining results: a
// run under any budget is byte-identical to an unlimited one. bytes <= 0
// means unlimited (the default). Honored by Open only, like
// WithPLIConfig; Session.Stats reports the live occupancy
// (PLIStats.BytesLive, with pinned bytes in PLIStats.BytesPinned) and
// the eviction count (PLIStats.Evictions).
func WithMemoryBudget(bytes int64) Option {
	return func(c *config) { c.pliCfg.MaxBytes = bytes }
}

// EvictionPolicy selects how a session's PLI cache picks eviction
// victims under WithMemoryBudget: PolicyClock (recency only, the
// default) or PolicyGDSF (cost-aware — an entry's priority weighs what
// rebuilding it would cost against the bytes it occupies, so a cheap
// huge partition goes before an expensive small one).
type EvictionPolicy = pli.Policy

const (
	// PolicyClock is sharded second-chance eviction, the default.
	PolicyClock = pli.PolicyClock
	// PolicyGDSF is Greedy-Dual-Size-Frequency-style cost-aware eviction.
	PolicyGDSF = pli.PolicyGDSF
)

// WithEvictionPolicy selects the PLI cache's eviction policy. Like every
// budget knob it changes cost, never results: mining output is
// byte-identical under either policy, any budget. Honored by Open only.
func WithEvictionPolicy(p EvictionPolicy) Option {
	return func(c *config) { c.pliCfg.Policy = p }
}

// WithSpillDir enables the PLI cache's disk spill tier under dir:
// evictions demote partitions whose rebuild cascade would scan more
// bytes than a disk read costs into an append-only segment store there,
// and later misses promote them back with one checksummed sequential
// read instead of recomputing. Segments are stamped with the relation's
// shape hash, so a directory left by a previous process over the same
// data starts the session warm, while one from different data is
// discarded with a log line. Like every budget knob this changes cost,
// never results — mining output is byte-identical to spill-off. Honored
// by Open only; call Session.Close to persist the spill index for the
// next warm start. "" (the default) disables the tier.
func WithSpillDir(dir string) Option {
	return func(c *config) { c.pliCfg.SpillDir = dir }
}

// WithSpillBudget bounds the spill tier's on-disk footprint; past it the
// oldest spill segments are deleted and their partitions become plain
// misses again. bytes <= 0 means unlimited (the default). Only
// meaningful with WithSpillDir; honored by Open only.
func WithSpillBudget(bytes int64) Option {
	return func(c *config) { c.pliCfg.SpillMaxBytes = bytes }
}

// WithEntropyBudget bounds the bytes the session's entropy memo retains.
// The memo caches one 8-byte entropy per distinct attribute set ever
// evaluated; across long ε sweeps over wide relations it becomes the
// dominant resident weight, so past the budget the memo evicts its
// lowest-priority entries (cost-aware, like PolicyGDSF: wider sets cost
// more to recompute and survive longer) and recomputes them from the PLI
// cache on the next read. Results are byte-identical under any budget.
// bytes <= 0 means unlimited (the default). Honored by Open only;
// Session.Stats reports the memo occupancy (MemoBytes) and eviction
// count (MemoEvictions). Sessions from the deprecated one-shot wrappers
// (unshared oracles) ignore it.
func WithEntropyBudget(bytes int64) Option {
	return func(c *config) { c.entropyBudget = bytes }
}

// WithProgress installs a callback receiving structured Progress events
// from the core mining loops.
func WithProgress(fn func(Progress)) Option { return func(c *config) { c.progress = fn } }

// WithTrace threads a caller-owned MineTrace through a mining call: the
// call resets it at entry and appends one PhaseTrace per top-level phase
// it runs. Tracing is always on — Session.Trace returns the last call's
// trace without this option — but a threaded trace is race-free to read
// the moment the call returns even when other mines run concurrently.
func WithTrace(t *MineTrace) Option { return func(c *config) { c.trace = t } }

// coreOptions lowers the resolved config to core.Options. The timeout is
// deliberately absent: session calls bound time exclusively through the
// context (mineContext), never through the core per-phase Budget, so
// exactly one timer is armed per call.
func (c config) coreOptions() core.Options {
	o := core.DefaultOptions(c.epsilon)
	o.PairwiseConsistency = c.pruning
	o.Pairs = c.pairs
	o.Progress = c.progress
	o.Trace = c.trace
	o.Workers = c.workers
	if c.workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// mineContext derives the context one mining call observes: the caller's
// ctx with the configured timeout layered on top when set.
func (c config) mineContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return context.WithCancel(ctx)
}

// Session is a reusable, concurrency-safe mining handle over one
// relation. It owns the expensive state — the dictionary-encoded relation,
// the PLI partition cache, and the entropy memo — and shares it across
// every call, so a second mine at a different ε pays only for the entropy
// sets it has not seen yet (the workload of the paper's figures, which
// re-score one instance under many thresholds).
//
// All methods are safe for concurrent use: the shared oracle serves warm
// entropies under a read lock and computes fresh ones single-flight per
// attribute set, so distinct sets — whether requested by concurrent calls
// or by the worker pool of one call — are computed in parallel, each
// exactly once. Mining itself fans attribute pairs out across
// WithWorkers goroutines (GOMAXPROCS by default) with deterministic,
// serial-identical results.
type Session struct {
	rel    *Relation
	oracle *entropy.Oracle
	base   config

	// lastTrace holds the stage trace of the most recently completed
	// mining call (published atomically — concurrent mines each publish
	// their own whole trace; none is ever mutated after publication).
	lastTrace atomic.Pointer[MineTrace]
}

// Open builds a session over r. Options become the session's per-call
// defaults (WithPLIConfig additionally sizes the oracle, which is built
// here, once).
func Open(r *Relation, opts ...Option) (*Session, error) {
	return open(r, true, opts)
}

// openUnshared builds a session whose oracle skips the concurrency
// locking — for the deprecated one-shot wrappers, which create, use, and
// drop the session on a single goroutine.
func openUnshared(r *Relation, opts ...Option) (*Session, error) {
	return open(r, false, opts)
}

func open(r *Relation, shared bool, opts []Option) (*Session, error) {
	if r == nil {
		return nil, errors.New("maimon: Open on a nil relation")
	}
	cfg := defaultSessionConfig().with(opts)
	var oracle *entropy.Oracle
	if shared {
		oracle = entropy.NewShared(r, cfg.pliCfg)
		oracle.SetMemoBudget(cfg.entropyBudget)
	} else {
		// Single-goroutine session: pin the pipeline to serial so the
		// unlocked oracle is never shared across worker miners (the core
		// layer also refuses to fan out over an unshared oracle).
		cfg.workers = 1
		oracle = entropy.NewWithConfig(r, cfg.pliCfg)
	}
	return &Session{rel: r, oracle: oracle, base: cfg}, nil
}

// Relation returns the relation the session mines.
func (s *Session) Relation() *Relation { return s.rel }

// Close releases the session's disk spill tier, if WithSpillDir enabled
// one: the spill index is persisted so the next session over the same
// directory and relation starts warm. In-memory mining state is
// unaffected — a closed session can keep mining, it just stops spilling.
// A session without a spill tier has nothing to close. Idempotent.
func (s *Session) Close() error { return s.oracle.Close() }

// Stats snapshots the session's entropy-oracle counters. The delta across
// two mines measures what the second one actually cost; HCached growing
// is the warm-oracle reuse the session exists for.
func (s *Session) Stats() Stats { return s.oracle.Stats() }

// MemoEntry is one exportable memoized entropy — an attribute set and
// its H in bits — the unit of the distributed tier's memo exchange.
type MemoEntry = entropy.MemoEntry

// MemoRecorder captures the entropies a session computes between
// RecordEntropyMemo and Close; see entropy.MemoRecorder.
type MemoRecorder = entropy.MemoRecorder

// ImportEntropyMemo publishes already-computed entropies into the
// session's shared memo: resident entries and in-flight computes are
// skipped (idempotent), fresh ones land through the normal
// WithEntropyBudget accounting and eviction. An entropy is a pure
// function of the relation, so importing correct values changes what
// the session computes locally, never what it mines. This is the
// worker half of the distributed memo exchange: maimond seeds a shard
// mine with the fleet's merged memo here. Stats().MemoSeedHits counts
// imported entries the session then actually read. Unshared sessions
// (deprecated one-shot wrappers) ignore it.
func (s *Session) ImportEntropyMemo(entries []MemoEntry) (added, dup int) {
	return s.oracle.ImportMemo(entries)
}

// RecordEntropyMemo attaches a recorder capturing every entropy the
// session computes fresh (memo misses only — cached serves and imported
// seeds are not echoed) until its Close. The distributed worker brackets
// each shard mine with one and ships MemoRecorder.Export as the shard's
// memo delta. Multiple recorders may be attached; concurrent mines feed
// all of them.
func (s *Session) RecordEntropyMemo() *MemoRecorder {
	return s.oracle.Record()
}

// Trace returns the stage-level trace of the most recently completed
// mining call, or nil before the first one. Each call owns a fresh
// trace, finished when the call returns, so the result is safe to read
// and render (MineTrace.String) at any time — unless the session was
// opened with a WithTrace default, in which case the next call resets
// that shared trace. When calls run concurrently the last one to finish
// wins; thread a trace through WithTrace to pin one call's breakdown.
func (s *Session) Trace() *MineTrace { return s.lastTrace.Load() }

// config resolves one call's options over the session defaults.
func (s *Session) config(opts []Option) config { return s.base.with(opts) }

// miner builds the per-call miner: session-shared oracle, call-local
// options and context.
func (s *Session) miner(cfg config, ctx context.Context) *core.Miner {
	return core.NewMiner(s.oracle, cfg.coreOptions()).WithContext(ctx)
}

func (s *Session) checkArity(what string) error {
	if s.rel.NumCols() < 3 {
		return errors.New("maimon: need at least 3 attributes to mine " + what)
	}
	return nil
}

// MineMVDs runs phase 1 (MVDMiner): it returns Mε, the full ε-MVDs with
// minimal-separator keys, from which every ε-MVD of the relation follows
// by Shannon inequalities (paper Thm. 5.7). Cancelling ctx stops the
// search promptly and returns the ε-MVDs mined so far together with
// context.Canceled; a deadline (ctx's or WithTimeout) surfaces as
// ErrInterrupted.
func (s *Session) MineMVDs(ctx context.Context, opts ...Option) (*MVDResult, error) {
	if err := s.checkArity("MVDs"); err != nil {
		return nil, err
	}
	cfg := s.config(opts)
	ctx, cancel := cfg.mineContext(ctx)
	defer cancel()
	m := s.miner(cfg, ctx)
	res := m.MineMVDs()
	s.lastTrace.Store(m.Trace())
	return res, res.Err
}

// MinePairMVDs runs phase 1 over exactly the given attribute pairs and
// returns the per-pair outcomes — each pair's minimal separators and the
// full ε-MVDs expanded from them, locally deduplicated in discovery
// order — without the cross-pair merge MineMVDs performs. It is the
// worker half of distributed mining: a maimond worker mines the pairs of
// its shards through this method, and the coordinator merges all shards'
// outcomes in canonical pair order with a global dedup, replaying
// exactly what a single-node mine does (internal/dist owns that merge).
// Outcomes are indexed like pairs; WithWorkers bounds the worker-local
// fan-out and never changes the outcomes.
func (s *Session) MinePairMVDs(ctx context.Context, pairs [][2]int, opts ...Option) ([]PairMVDs, error) {
	if err := s.checkArity("MVDs"); err != nil {
		return nil, err
	}
	cfg := s.config(opts)
	ctx, cancel := cfg.mineContext(ctx)
	defer cancel()
	m := s.miner(cfg, ctx)
	out, err := m.MinePairMVDs(pairs)
	s.lastTrace.Store(m.Trace())
	return out, err
}

// SchemesFromMVDs runs phase 2 (ASMiner) alone over an already-mined Mε:
// it enumerates the non-extendable acyclic ε-schemas synthesized from
// maximal pairwise-compatible subsets of mvds, exactly as MineSchemes
// does after its own phase 1. It exists for callers that obtained the
// ε-MVDs elsewhere — the distributed coordinator, which merges
// worker-mined shard results and then runs the cheap central phase here.
// WithMaxSchemes bounds the enumeration; a deadline or cancelled ctx
// surfaces as with the other mining methods, with the schemes synthesized
// so far still valid.
func (s *Session) SchemesFromMVDs(ctx context.Context, mvds []MVD, opts ...Option) ([]*Scheme, error) {
	if err := s.checkArity("schemes"); err != nil {
		return nil, err
	}
	cfg := s.config(opts)
	ctx, cancel := cfg.mineContext(ctx)
	defer cancel()
	m := s.miner(cfg, ctx)
	var out []*Scheme
	m.EnumerateSchemes(mvds, func(sc *Scheme) bool {
		out = append(out, sc)
		return cfg.maxSchemes <= 0 || len(out) < cfg.maxSchemes
	})
	s.lastTrace.Store(m.Trace())
	return out, m.Err()
}

// MineMinSeps runs only the separator phase for every attribute pair —
// the workload of the paper's scalability experiments (Sec. 8.3). The
// result's MinSeps map is filled; no full MVDs are expanded.
func (s *Session) MineMinSeps(ctx context.Context, opts ...Option) (*MVDResult, error) {
	if err := s.checkArity("separators"); err != nil {
		return nil, err
	}
	cfg := s.config(opts)
	ctx, cancel := cfg.mineContext(ctx)
	defer cancel()
	m := s.miner(cfg, ctx)
	res := m.MineMinSepsAll()
	s.lastTrace.Store(m.Trace())
	return res, res.Err
}

// MineSchemes runs both phases and returns the non-extendable acyclic
// ε-schemas synthesized from maximal compatible MVD sets, along with the
// phase-1 result. Schemes arrive in enumeration order; use Analyze to
// rank them by savings and spurious-tuple rate, or SchemeSeq to consume
// them as they are synthesized.
func (s *Session) MineSchemes(ctx context.Context, opts ...Option) ([]*Scheme, *MVDResult, error) {
	if err := s.checkArity("schemes"); err != nil {
		return nil, nil, err
	}
	cfg := s.config(opts)
	ctx, cancel := cfg.mineContext(ctx)
	defer cancel()
	m := s.miner(cfg, ctx)
	schemes, res := m.MineSchemes(cfg.maxSchemes)
	s.lastTrace.Store(m.Trace())
	return schemes, res, res.Err
}

// SchemeSeq mines schemes as a stream: phase 1 runs first, then each
// scheme is yielded the moment ASMiner synthesizes it, without collecting
// the whole result set. Breaking out of the range loop stops the
// underlying miner immediately (the enumeration runs inline on the
// consumer's goroutine — there is nothing left running). A phase-1
// failure, a deadline, or a cancelled ctx surfaces as a final
// (nil, error) yield; WithMaxSchemes bounds the yields.
//
//	for scheme, err := range session.SchemeSeq(ctx, maimon.WithEpsilon(0.1)) {
//	    if err != nil { ... }
//	    use(scheme)
//	}
func (s *Session) SchemeSeq(ctx context.Context, opts ...Option) iter.Seq2[*Scheme, error] {
	return func(yield func(*Scheme, error) bool) {
		if err := s.checkArity("schemes"); err != nil {
			yield(nil, err)
			return
		}
		cfg := s.config(opts)
		ctx, cancel := cfg.mineContext(ctx)
		defer cancel()
		m := s.miner(cfg, ctx)
		defer func() { s.lastTrace.Store(m.Trace()) }()
		res := m.MineMVDs()
		if res.Err != nil {
			yield(nil, res.Err)
			return
		}
		count := 0
		broke := false
		m.EnumerateSchemes(res.MVDs, func(sc *Scheme) bool {
			if !yield(sc, nil) {
				broke = true
				return false
			}
			count++
			return cfg.maxSchemes <= 0 || count < cfg.maxSchemes
		})
		if err := m.Err(); err != nil && !broke {
			yield(nil, err)
		}
	}
}

// J returns the J-measure (bits) of an MVD over the relation's empirical
// distribution, served from the warm oracle: 0 iff the MVD holds exactly.
func (s *Session) J(m MVD) float64 { return info.JMVD(s.oracle, m) }

// JOfSchema returns the J-measure of an acyclic schema (errors when the
// schema is cyclic), served from the warm oracle.
func (s *Session) JOfSchema(sch Schema) (float64, error) {
	return info.JSchema(s.oracle, sch)
}

// Analyze computes decomposition-quality metrics (storage savings S,
// spurious-tuple rate E, width measures) of schema sch over the session's
// relation.
func (s *Session) Analyze(sch Schema) (Metrics, error) {
	return decompose.Analyze(s.rel, sch)
}
