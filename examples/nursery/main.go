// Nursery reproduces the paper's Sec. 8.1 use case interactively: mine
// acyclic schemes from the (reconstructed) Nursery dataset across a range
// of thresholds, report storage savings S and spurious-tuple rate E for
// each, and print the pareto-optimal schemes — the paper's Fig. 10.
//
// The whole sweep runs through ONE Session: every ε after the first mines
// against the warm oracle — the exact workload the session API exists
// for. The closing line reports how much of the entropy work the memo
// absorbed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	maimon "repro"
	"repro/internal/decompose"
)

func main() {
	budget := flag.Duration("budget", 5*time.Second, "mining budget per threshold")
	flag.Parse()

	r := maimon.Nursery()
	fmt.Printf("Nursery: %d rows × %d attributes = %d cells\n", r.NumRows(), r.NumCols(), r.Cells())

	sess, err := maimon.Open(r, maimon.WithTimeout(*budget), maimon.WithMaxSchemes(100))
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		scheme *maimon.Scheme
		met    maimon.Metrics
	}
	var all []entry
	seen := map[string]bool{}
	ctx := context.Background()
	for _, eps := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5} {
		schemes, _, err := sess.MineSchemes(ctx, maimon.WithEpsilon(eps))
		if err != nil && err != maimon.ErrInterrupted {
			log.Fatal(err)
		}
		for _, s := range schemes {
			fp := s.Schema.Fingerprint()
			if seen[fp] {
				continue
			}
			seen[fp] = true
			met, err := sess.Analyze(s.Schema)
			if err != nil {
				continue
			}
			all = append(all, entry{s, met})
		}
		fmt.Printf("  ε=%.2f: %d distinct schemes so far\n", eps, len(all))
	}

	points := make([]decompose.Point, len(all))
	for i, e := range all {
		points[i] = decompose.Point{Index: i, Savings: e.met.SavingsPct, Spurious: e.met.SpuriousPct}
	}
	fmt.Println("\npareto-optimal schemes (compare with the paper's Fig. 10):")
	fmt.Printf("%-8s %-8s %-8s %-3s  %s\n", "J", "S[%]", "E[%]", "m", "schema")
	for _, p := range decompose.ParetoFront(points) {
		e := all[p.Index]
		fmt.Printf("%-8.3f %-8.1f %-8.2f %-3d  %s\n",
			e.scheme.J, e.met.SavingsPct, e.met.SpuriousPct, e.scheme.M(),
			e.scheme.Schema.Format(r.Names()))
	}
	st := sess.Stats()
	fmt.Printf("\nsession oracle: %d H calls, %d (%.0f%%) served from the warm memo\n",
		st.HCalls, st.HCached, 100*float64(st.HCached)/float64(st.HCalls))
}
