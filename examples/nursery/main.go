// Nursery reproduces the paper's Sec. 8.1 use case interactively: mine
// acyclic schemes from the (reconstructed) Nursery dataset across a range
// of thresholds, report storage savings S and spurious-tuple rate E for
// each, and print the pareto-optimal schemes — the paper's Fig. 10.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	maimon "repro"
	"repro/internal/decompose"
)

func main() {
	budget := flag.Duration("budget", 5*time.Second, "mining budget per threshold")
	flag.Parse()

	r := maimon.Nursery()
	fmt.Printf("Nursery: %d rows × %d attributes = %d cells\n", r.NumRows(), r.NumCols(), r.Cells())

	type entry struct {
		scheme *maimon.Scheme
		met    maimon.Metrics
	}
	var all []entry
	seen := map[string]bool{}
	for _, eps := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5} {
		schemes, _, err := maimon.MineSchemes(r, maimon.Options{
			Epsilon: eps, Timeout: *budget, MaxSchemes: 100,
		})
		if err != nil && err != maimon.ErrInterrupted {
			log.Fatal(err)
		}
		for _, s := range schemes {
			fp := s.Schema.Fingerprint()
			if seen[fp] {
				continue
			}
			seen[fp] = true
			met, err := maimon.Analyze(r, s.Schema)
			if err != nil {
				continue
			}
			all = append(all, entry{s, met})
		}
		fmt.Printf("  ε=%.2f: %d distinct schemes so far\n", eps, len(all))
	}

	points := make([]decompose.Point, len(all))
	for i, e := range all {
		points[i] = decompose.Point{Index: i, Savings: e.met.SavingsPct, Spurious: e.met.SpuriousPct}
	}
	fmt.Println("\npareto-optimal schemes (compare with the paper's Fig. 10):")
	fmt.Printf("%-8s %-8s %-8s %-3s  %s\n", "J", "S[%]", "E[%]", "m", "schema")
	for _, p := range decompose.ParetoFront(points) {
		e := all[p.Index]
		fmt.Printf("%-8.3f %-8.1f %-8.2f %-3d  %s\n",
			e.scheme.J, e.met.SavingsPct, e.met.SpuriousPct, e.scheme.M(),
			e.scheme.Schema.Format(r.Names()))
	}
}
