// Fdbridge shows the relationship between functional dependencies and
// MVDs that the paper builds on (Sec. 1): FDs are special cases of MVDs —
// every exact FD X→A lifts to the exact MVD X ↠ A | rest — but mining all
// FDs and UCCs is insufficient to discover acyclic schemes. We mine both
// dependency families over the same data and cross-check them; the MVD
// side runs through one Session, so the per-FD J evaluations and the full
// MVD mine share a single warm oracle.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	maimon "repro"
	"repro/internal/datagen"
	"repro/internal/fd"
)

func main() {
	// A chain A→B→C→D plus two noisy free columns: rich in FDs and MVDs.
	r := datagen.FunctionalChain(2000, 4, 6, 0, 7)
	fmt.Printf("relation: %d rows × %d cols (functional chain A→B→C→D)\n\n", r.NumRows(), r.NumCols())

	sess, err := maimon.Open(r)
	if err != nil {
		log.Fatal(err)
	}

	fdRes := fd.NewMiner(r, fd.Options{}).Mine()
	fmt.Printf("FD/UCC baseline found %d minimal FDs, %d minimal UCCs:\n", len(fdRes.FDs), len(fdRes.UCCs))
	fmt.Print(fdRes.Summary(r.Names()))

	fmt.Println("\nevery exact FD lifts to an exact MVD (J = 0):")
	for _, f := range fdRes.FDs {
		m, ok := fd.ToMVD(f, r.NumCols())
		if !ok {
			continue
		}
		j := sess.J(m)
		fmt.Printf("  %-12s => %-28s J=%.6f\n", f.Format(r.Names()), m.Format(r.Names()), j)
		if j > 1e-9 {
			log.Fatalf("lifted MVD unexpectedly approximate: %v", j)
		}
	}

	// But MVD mining finds structure FDs cannot express: keys that are
	// not determinants still separate attribute groups. The mine below
	// reuses every entropy the J evaluations above already computed.
	res, err := sess.MineMVDs(context.Background(),
		maimon.WithEpsilon(0), maimon.WithTimeout(10*time.Second))
	if err != nil && err != maimon.ErrInterrupted {
		log.Fatal(err)
	}
	lifted := map[string]bool{}
	for _, f := range fdRes.FDs {
		if m, ok := fd.ToMVD(f, r.NumCols()); ok {
			lifted[m.Fingerprint()] = true
		}
	}
	extra := 0
	for _, m := range res.MVDs {
		if !lifted[m.Fingerprint()] {
			extra++
		}
	}
	fmt.Printf("\nMVD miner found %d full exact MVDs; %d are not FD lifts —\n", len(res.MVDs), extra)
	fmt.Println("the structure acyclic-schema discovery needs and FD mining misses.")
}
