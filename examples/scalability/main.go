// Scalability runs a miniature version of the paper's Sec. 8.3 study on
// one analog dataset: minimal-separator mining time as rows and columns
// grow. Row growth should look roughly linear (entropy scans dominate);
// column growth combinatorial (the separator search space explodes).
// Each configuration is a distinct (sampled or projected) relation, so
// each gets its own Session; the budget rides WithTimeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	maimon "repro"
	"repro/internal/bitset"
	"repro/internal/datagen"
)

func main() {
	dataset := flag.String("dataset", "Image", "Table-2 analog to scale")
	budget := flag.Duration("budget", 3*time.Second, "budget per configuration")
	flag.Parse()

	spec, err := datagen.Lookup(*dataset, 4000)
	if err != nil {
		log.Fatal(err)
	}
	full := spec.Generate()
	fmt.Printf("%s analog: %d rows × %d cols\n", spec.Name, full.NumRows(), full.NumCols())

	fmt.Println("\nrow scalability (all columns, ε = 0.01):")
	fmt.Printf("%10s %12s %10s\n", "rows", "time", "#minseps")
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		rows := int(frac * float64(full.NumRows()))
		sample := full.SampleRows(rows, 1)
		dur, count, tl := run(sample, 0.01, *budget)
		fmt.Printf("%10d %12s %10d%s\n", rows, dur.Round(time.Millisecond), count, tlMark(tl))
	}

	fmt.Println("\ncolumn scalability (all rows, ε = 0.01):")
	fmt.Printf("%10s %12s %10s\n", "cols", "time", "#minseps")
	for cols := 4; cols <= full.NumCols(); cols += 3 {
		var keep bitset.AttrSet
		for j := 0; j < cols; j++ {
			keep = keep.Add(j)
		}
		sub := full.KeepColumns(keep)
		dur, count, tl := run(sub, 0.01, *budget)
		fmt.Printf("%10d %12s %10d%s\n", cols, dur.Round(time.Millisecond), count, tlMark(tl))
	}
}

func run(r *maimon.Relation, eps float64, budget time.Duration) (time.Duration, int, bool) {
	sess, err := maimon.Open(r)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, merr := sess.MineMinSeps(context.Background(),
		maimon.WithEpsilon(eps), maimon.WithTimeout(budget))
	if res == nil {
		log.Fatal(merr)
	}
	return time.Since(start), res.NumMinSeps(), merr != nil
}

func tlMark(tl bool) string {
	if tl {
		return "  (TL)"
	}
	return ""
}
