// Planted demonstrates recovery of a known acyclic schema: we construct a
// relation as an explicit acyclic join (so the schema holds exactly),
// corrupt a fraction of cells, and show that exact mining (ε = 0) loses
// the schema while approximate mining (ε > 0) recovers a decomposition of
// the same shape — the paper's core motivation for approximation. The
// dirty relation is scored and mined through one Session, so the ε > 0
// re-mine starts from the warm oracle the ε = 0 attempt populated.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	maimon "repro"
	"repro/internal/bitset"
	"repro/internal/datagen"
)

func main() {
	noise := flag.Float64("noise", 0.01, "fraction of cells corrupted")
	flag.Parse()

	bags := []bitset.AttrSet{
		bitset.Of(0, 1, 2),    // ABC
		bitset.Of(1, 2, 3, 4), // BCDE
		bitset.Of(4, 5, 6),    // EFG
	}
	spec := datagen.PlantedSpec{Bags: bags, RootTuples: 64, ExtPerSep: 3, Domain: 8, Seed: 42}

	clean, planted, err := datagen.Planted(spec)
	if err != nil {
		log.Fatal(err)
	}
	spec.NoiseCells = *noise
	dirty, _, err := datagen.Planted(spec)
	if err != nil {
		log.Fatal(err)
	}

	cleanSess, err := maimon.Open(clean)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := maimon.Open(dirty, maimon.WithTimeout(10*time.Second), maimon.WithMaxSchemes(50))
	if err != nil {
		log.Fatal(err)
	}

	jClean, err := cleanSess.JOfSchema(planted)
	if err != nil {
		log.Fatal(err)
	}
	jDirty, err := sess.JOfSchema(planted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted schema %v\n", planted.Format(clean.Names()))
	fmt.Printf("J on clean data:   %.4f bits (exact by construction)\n", jClean)
	fmt.Printf("J after %.1f%% cell noise: %.4f bits\n", *noise*100, jDirty)

	ctx := context.Background()
	for _, eps := range []float64{0, jDirty * 1.1} {
		schemes, res, err := sess.MineSchemes(ctx, maimon.WithEpsilon(eps))
		if err != nil && err != maimon.ErrInterrupted {
			log.Fatal(err)
		}
		best := bestByRelations(schemes)
		fmt.Printf("\nε=%.4f: %d full MVDs, %d schemes\n", eps, len(res.MVDs), len(schemes))
		if best == nil {
			fmt.Println("  no decomposition found")
			continue
		}
		fmt.Printf("  deepest decomposition: %v (m=%d, J=%.4f)\n",
			best.Schema.Format(dirty.Names()), best.M(), best.J)
		met, err := sess.Analyze(best.Schema)
		if err == nil {
			fmt.Printf("  savings S=%.1f%%, spurious E=%.2f%%\n", met.SavingsPct, met.SpuriousPct)
		}
	}
	fmt.Println("\nWith ε = 0 the noise hides the planted structure; a small ε recovers it.")
}

func bestByRelations(schemes []*maimon.Scheme) *maimon.Scheme {
	var best *maimon.Scheme
	for _, s := range schemes {
		if best == nil || s.M() > best.M() {
			best = s
		}
	}
	return best
}
