// Quickstart: mine approximate MVDs and acyclic schemes from the paper's
// running example (Fig. 1), with and without the "red" dirty tuple that
// breaks the exact decomposition — the smallest end-to-end tour of the
// public API. One Session per relation: the dirty relation is mined at
// two thresholds through the same session, so the second mine reuses
// every entropy the first one computed.
package main

import (
	"context"
	"fmt"
	"log"

	maimon "repro"
)

func main() {
	names := []string{"A", "B", "C", "D", "E", "F"}
	clean := [][]string{
		{"a1", "b1", "c1", "d1", "e1", "f1"},
		{"a2", "b2", "c1", "d1", "e2", "f2"},
		{"a2", "b2", "c2", "d2", "e3", "f2"},
		{"a1", "b2", "c1", "d2", "e3", "f1"},
	}
	red := []string{"a1", "b2", "c1", "d2", "e2", "f1"}

	fmt.Println("== exact mining on the clean 4-tuple relation (ε = 0) ==")
	r, err := maimon.FromRows(names, clean)
	if err != nil {
		log.Fatal(err)
	}
	cleanSess, err := maimon.Open(r)
	if err != nil {
		log.Fatal(err)
	}
	run(cleanSess, 0)

	fmt.Println("\n== the red tuple breaks exactness; mine at ε = 0 and ε = 0.2 ==")
	dirty, err := maimon.FromRows(names, append(clean, red))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := maimon.Open(dirty)
	if err != nil {
		log.Fatal(err)
	}
	// The paper's support MVD BD ↠ E|ACF no longer holds exactly:
	phi, err := maimon.ParseMVD("BD->E|ACF")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("J(BD ↠ E|ACF) on dirty data = %.3f bits\n", sess.J(phi))
	run(sess, 0)
	run(sess, 0.2) // warm re-mine: same session, new threshold
	st := sess.Stats()
	fmt.Printf("\nwarm-oracle reuse across the two mines: %d/%d H calls served from the memo\n",
		st.HCached, st.HCalls)
}

func run(sess *maimon.Session, eps float64) {
	r := sess.Relation()
	schemes, result, err := sess.MineSchemes(context.Background(),
		maimon.WithEpsilon(eps), maimon.WithMaxSchemes(6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε=%.2f: %d full MVDs, e.g.:\n", eps, len(result.MVDs))
	for i, m := range result.MVDs {
		if i == 3 {
			fmt.Println("   ...")
			break
		}
		fmt.Printf("   %s\n", m.Format(r.Names()))
	}
	for _, s := range schemes {
		met, err := sess.Analyze(s.Schema)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   scheme %-46s J=%.3f spurious=%.0f%%\n",
			s.Schema.Format(r.Names()), s.J, met.SpuriousPct)
	}
}
