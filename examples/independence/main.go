// Independence shows the Geiger–Pearl view of Maimon's output: every
// mined MVD is a saturated conditional-independence statement over the
// relation's empirical distribution. We mine a planted relation through a
// Session, print the CI statements, and exercise the semi-graphoid
// derivations (decomposition, weak union) numerically — the adapter a
// graphical-model pipeline would consume.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	maimon "repro"
	"repro/internal/bitset"
	"repro/internal/ci"
	"repro/internal/datagen"
	"repro/internal/entropy"
)

func main() {
	bags := []bitset.AttrSet{
		bitset.Of(0, 1, 2),    // ABC
		bitset.Of(2, 3, 4),    // CDE
		bitset.Of(4, 5, 6, 7), // EFGH
	}
	r, planted, err := datagen.Planted(datagen.PlantedSpec{
		Bags: bags, RootTuples: 48, ExtPerSep: 3, Domain: 9, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted %v over %d rows\n\n", planted.Format(r.Names()), r.NumRows())

	sess, err := maimon.Open(r)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.MineMVDs(context.Background(),
		maimon.WithEpsilon(0), maimon.WithTimeout(15*time.Second))
	if err != nil && err != maimon.ErrInterrupted {
		log.Fatal(err)
	}
	stmts := maimon.CIStatements(res.MVDs)
	fmt.Printf("mined %d full MVDs = %d saturated CI statements:\n", len(res.MVDs), len(stmts))
	fmt.Print(ci.Report(stmts, r.Names()))

	// The numeric derivation checks evaluate I against an oracle; a fresh
	// one here shows the internal surface — the session above keeps its
	// own warm oracle for the mining side.
	o := entropy.New(r)
	fmt.Println("\nsemi-graphoid derivations (each must keep I at 0):")
	for _, s := range stmts {
		if s.Z.Len() < 2 {
			continue
		}
		sub, err := s.Decompose(bitset.Single(s.Z.Min()))
		if err != nil {
			continue
		}
		wu, err := s.WeakUnion(bitset.Single(s.Z.Min()))
		if err != nil {
			continue
		}
		fmt.Printf("  %-34s I=%.6f\n", "decompose: "+sub.Format(r.Names()), sub.I(o))
		fmt.Printf("  %-34s I=%.6f\n", "weak union: "+wu.Format(r.Names()), wu.I(o))
		if sub.I(o) > 1e-9 || wu.I(o) > 1e-9 {
			log.Fatal("derivation broke independence — graphoid violation")
		}
		break
	}
	fmt.Println("\nall derivations sound, as the semi-graphoid axioms require.")
}
