// Command datagen emits the reproduction's synthetic datasets as CSV:
// the reconstructed Nursery relation, the 20 Table-2 analogs, or a custom
// planted-schema relation.
//
// Usage:
//
//	datagen -dataset Nursery                        > nursery.csv
//	datagen -dataset Bridges -scale 5000            > bridges.csv
//	datagen -list
//	datagen -planted "ABC;BCD;CE" -rows 1000 -noise 0.01 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bitset"
	"repro/internal/datagen"
	"repro/internal/relation"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "dataset name (see -list) or \"Nursery\"")
		list    = flag.Bool("list", false, "list the Table-2 analog datasets")
		scale   = flag.Int("scale", 0, "row cap for analogs (0 = 10000)")
		planted = flag.String("planted", "", "semicolon-separated bags in letter form, e.g. \"ABC;BCD;CE\"")
		rows    = flag.Int("rows", 1000, "approximate rows for -planted")
		noise   = flag.Float64("noise", 0, "cell noise rate for -planted")
		seed    = flag.Int64("seed", 1, "random seed for -planted")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-22s %5s %9s %7s\n", "Name", "Cols", "PaperRows", "Rows")
		for _, s := range datagen.Registry(*scale) {
			fmt.Printf("%-22s %5d %9d %7d\n", s.Name, s.PaperCols, s.PaperRows, s.Rows)
		}
		return
	}

	var r *relation.Relation
	switch {
	case *planted != "":
		var bags []bitset.AttrSet
		for _, part := range strings.Split(*planted, ";") {
			b, err := bitset.Parse(strings.TrimSpace(part))
			if err != nil {
				fail("bag %q: %v", part, err)
			}
			bags = append(bags, b)
		}
		children := len(bags) - 1
		root := *rows
		for i := 0; i < children && root > 4; i++ {
			root = (root + 1) / 2
		}
		var err error
		r, _, err = datagen.Planted(datagen.PlantedSpec{
			Bags: bags, RootTuples: root, ExtPerSep: 2, NoiseCells: *noise, Seed: *seed,
		})
		if err != nil {
			fail("planted: %v", err)
		}
	case strings.EqualFold(*dataset, "nursery"):
		r = datagen.Nursery()
	case *dataset != "":
		spec, err := datagen.Lookup(*dataset, *scale)
		if err != nil {
			fail("%v (use -list)", err)
		}
		r = spec.Generate()
	default:
		flag.Usage()
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := r.WriteCSV(w); err != nil {
		fail("writing CSV: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows × %d columns\n", r.NumRows(), r.NumCols())
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
