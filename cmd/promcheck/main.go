// Command promcheck validates a Prometheus text-exposition scrape — the
// CI gate behind maimond's /metrics endpoint. It parses the input with
// the strict obs parser (metric/label charset, HELP/TYPE pairing and
// order, float values, non-negative counters, monotone cumulative
// histogram buckets terminated by +Inf) and then applies the checks the
// flags request.
//
// Usage:
//
//	promcheck [-min-series N] [-require name,name,...] [file]
//
// With no file argument the scrape is read from stdin, so it composes
// with curl:
//
//	curl -fsS localhost:8080/metrics | promcheck -min-series 20 -require maimond_jobs_submitted_total
//
// Exit status 0 means the exposition is well-formed and every check
// passed; 1 means malformed input or a failed check (details on stderr).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	var (
		minSeries = flag.Int("min-series", 0, "fail unless the scrape has at least N distinct series (name + label set)")
		require   = flag.String("require", "", "comma-separated metric names that must be present as samples")
		list      = flag.Bool("list", false, "print every family with its type and series count")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	src := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in, src = f, flag.Arg(0)
	}

	e, err := obs.ParseExposition(in)
	if err != nil {
		fail("%s: malformed exposition: %v", src, err)
	}

	bad := false
	if n := e.SeriesCount(); *minSeries > 0 && n < *minSeries {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %d series, want at least %d\n", src, n, *minSeries)
		bad = true
	}
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !e.Has(name) {
				fmt.Fprintf(os.Stderr, "promcheck: %s: required metric %q has no samples\n", src, name)
				bad = true
			}
		}
	}
	if *list {
		for _, fam := range sortedFamilies(e) {
			fmt.Printf("%-50s %-10s %d series\n", fam.Name, fam.Type, len(fam.Samples))
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Printf("promcheck: %s: ok (%d families, %d series)\n", src, len(e.Families), e.SeriesCount())
}

func sortedFamilies(e *obs.Exposition) []*obs.ExpoFamily {
	out := make([]*obs.ExpoFamily, 0, len(e.Families))
	for _, f := range e.Families {
		out = append(out, f)
	}
	for i := 1; i < len(out); i++ { // insertion sort: tiny n, no extra imports
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}
