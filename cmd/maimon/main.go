// Command maimon mines approximate MVDs and acyclic schemes from a CSV
// relation, the end-to-end workflow of the paper.
//
// Usage:
//
//	maimon -input data.csv [-header] [-epsilon 0.1] [-mode schemes]
//	       [-timeout 30s] [-max-schemes 50] [-workers 0] [-cache-bytes 0]
//	       [-entropy-bytes 0] [-evict-policy clock] [-spill-dir ""]
//	       [-spill-bytes 0] [-fds] [-v] [-trace]
//
// Modes:
//
//	minseps   print the minimal separators per attribute pair
//	mvds      print Mε, the full ε-MVDs with minimal separator keys
//	schemes   print mined acyclic schemes ranked by storage savings,
//	          with J, savings S%, spurious-tuple rate E% and width
//	decompose mine (or take -schema), pick the best scheme by savings,
//	          and write one CSV per relation into -out
//
// With -v, live progress (phase, pairs done/total, MVDs found) streams to
// stderr as mining runs, and in schemes mode each scheme is printed the
// moment the enumerator synthesizes it, ahead of the final ranked table.
//
// With -trace, the stage-level mine trace prints to stderr after mining:
// one line per phase (wall time, entropy computes vs memo hits, PLI and
// intersection work) and one per stage (separator mining, full-MVD
// expansion, graph build, schema synthesis) with CPU time, calls, items,
// J-evaluations and candidates. Stage and entropy-level trace counts
// are deterministic across -workers settings; only the durations (and
// PLI-layer scheduling detail such as the hit/miss split) change.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	maimon "repro"
	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/fd"
)

func main() {
	var (
		input        = flag.String("input", "", "input CSV file (required)")
		header       = flag.Bool("header", true, "first CSV record is the header")
		epsilon      = flag.Float64("epsilon", 0, "approximation threshold ε in bits")
		mode         = flag.String("mode", "schemes", "minseps | mvds | schemes | decompose")
		timeout      = flag.Duration("timeout", time.Minute, "mining time budget (0 = unlimited)")
		maxSchemes   = flag.Int("max-schemes", 100, "cap on schemes enumerated (0 = all)")
		withFDs      = flag.Bool("fds", false, "also mine exact FDs/UCCs (baseline)")
		schemaSpec   = flag.String("schema", "", "decompose mode: explicit schema, bags separated by ';' (e.g. \"A,B,D;A,C,D;B,D,E;A,F\")")
		outDir       = flag.String("out", "decomposed", "decompose mode: output directory")
		rank         = flag.String("rank", "savings", "schemes mode ordering: savings | j | relations | width")
		workers      = flag.Int("workers", 0, "parallel mining fan-out (0 = GOMAXPROCS, 1 = serial)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "PLI cache memory budget in bytes; cold partitions are evicted past it (0 = unlimited)")
		entropyBytes = flag.Int64("entropy-bytes", 0, "entropy-memo memory budget in bytes; cold entropies are evicted past it (0 = unlimited)")
		evictPolicy  = flag.String("evict-policy", "clock", "PLI cache eviction policy under -cache-bytes: clock (recency) or gdsf (cost-aware)")
		spillDir     = flag.String("spill-dir", "", "disk spill tier: evicted partitions worth re-reading are demoted into segment files under this directory instead of dropped (empty = disabled)")
		spillBytes   = flag.Int64("spill-bytes", 0, "on-disk budget of the spill tier; oldest segments deleted past it (0 = unlimited)")
		verbose      = flag.Bool("v", false, "stream live progress (and schemes, as they arrive) to stderr")
		trace        = flag.Bool("trace", false, "print the stage-level mine trace (per-phase wall time, entropy/PLI work, per-stage breakdown) to stderr after mining")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}
	r, err := maimon.LoadCSV(*input, *header)
	if err != nil {
		fail("loading %s: %v", *input, err)
	}
	fmt.Printf("relation: %d rows × %d columns (%s)\n", r.NumRows(), r.NumCols(), *input)

	// The timeout rides on a signal-aware context, so Ctrl-C interrupts a
	// long mine and still prints the partial results gathered so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sessOpts := []maimon.Option{maimon.WithEpsilon(*epsilon), maimon.WithMaxSchemes(*maxSchemes),
		maimon.WithWorkers(*workers), maimon.WithMemoryBudget(*cacheBytes),
		maimon.WithEntropyBudget(*entropyBytes)}
	switch *evictPolicy {
	case "", "clock":
	case "gdsf":
		sessOpts = append(sessOpts, maimon.WithEvictionPolicy(maimon.PolicyGDSF))
	default:
		fail("unknown -evict-policy %q (want clock or gdsf)", *evictPolicy)
	}
	if *spillDir != "" {
		sessOpts = append(sessOpts, maimon.WithSpillDir(*spillDir), maimon.WithSpillBudget(*spillBytes))
	}
	sess, err := maimon.Open(r, sessOpts...)
	if err != nil {
		fail("%v", err)
	}
	defer sess.Close()
	// Track the MVD count through the event stream (cheap even without
	// -v); with -v the same stream is echoed to stderr live.
	mvdCount := 0
	opts := []maimon.Option{maimon.WithProgress(func(p maimon.Progress) {
		if p.MVDs > mvdCount {
			mvdCount = p.MVDs
		}
		if *verbose {
			printProgress(p)
		}
	})}

	switch *mode {
	case "minseps":
		res, merr := sess.MineMinSeps(ctx, opts...)
		if res == nil {
			fail("%v", merr)
		}
		for _, p := range res.SortedPairs() {
			fmt.Printf("(%s, %s):", r.Name(p.A), r.Name(p.B))
			for _, s := range res.MinSeps[p] {
				fmt.Printf(" {%s}", s.Format(r.Names()))
			}
			fmt.Println()
		}
		fmt.Printf("%d minimal separators total\n", res.NumMinSeps())
		warnTimeout(merr)
	case "mvds":
		res, merr := sess.MineMVDs(ctx, opts...)
		if res == nil {
			fail("%v", merr)
		}
		for _, phi := range res.MVDs {
			fmt.Printf("  %-40s J=%.4f\n", phi.Format(r.Names()), sess.J(phi))
		}
		fmt.Printf("%d full ε-MVDs (ε=%.3f)\n", len(res.MVDs), *epsilon)
		warnTimeout(merr)
	case "schemes":
		// Consume the stream: schemes print (under -v) the moment the
		// enumerator synthesizes them; the ranked table follows once the
		// enumeration is done or interrupted.
		var schemes []*maimon.Scheme
		var mineErr error
		for s, serr := range sess.SchemeSeq(ctx, opts...) {
			if serr != nil {
				mineErr = serr
				break
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "scheme %3d: %-46s J=%.3f\n",
					len(schemes)+1, s.Schema.Format(r.Names()), s.J)
			}
			schemes = append(schemes, s)
		}
		type row struct {
			s   *core.Scheme
			met decompose.Metrics
		}
		var rows []row
		for _, s := range schemes {
			met, err := sess.Analyze(s.Schema)
			if err != nil {
				continue
			}
			rows = append(rows, row{s, met})
		}
		switch *rank {
		case "savings":
			sort.Slice(rows, func(i, j int) bool {
				return rows[i].met.SavingsPct > rows[j].met.SavingsPct
			})
		case "j":
			sort.Slice(rows, func(i, j int) bool {
				return core.RankByJ.Less(rows[i].s, rows[j].s)
			})
		case "relations":
			sort.Slice(rows, func(i, j int) bool {
				return core.RankByRelations.Less(rows[i].s, rows[j].s)
			})
		case "width":
			sort.Slice(rows, func(i, j int) bool {
				return core.RankByWidth.Less(rows[i].s, rows[j].s)
			})
		default:
			fail("unknown rank %q", *rank)
		}
		fmt.Printf("%-8s %-8s %-9s %-3s %-6s  %s\n", "J", "S[%]", "E[%]", "m", "width", "schema")
		for _, rw := range rows {
			fmt.Printf("%-8.3f %-8.1f %-9.2f %-3d %-6d  %s\n",
				rw.s.J, rw.met.SavingsPct, rw.met.SpuriousPct,
				rw.s.M(), rw.s.Schema.Width(), rw.s.Schema.Format(r.Names()))
		}
		fmt.Printf("%d schemes from %d full MVDs (ε=%.3f)\n", len(rows), mvdCount, *epsilon)
		warnTimeout(mineErr)
	case "decompose":
		sch, err := pickSchema(ctx, sess, *schemaSpec, opts)
		if err != nil {
			fail("%v", err)
		}
		d, err := decompose.Decompose(r, sch)
		if err != nil {
			fail("%v", err)
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail("%v", err)
		}
		if err := d.WriteCSVs(*outDir); err != nil {
			fail("%v", err)
		}
		met, err := sess.Analyze(sch)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("decomposed into %d relations under %s/ (S=%.1f%%, E=%.2f%%)\n",
			sch.M(), *outDir, met.SavingsPct, met.SpuriousPct)
		fmt.Printf("schema: %s\n", sch.Format(r.Names()))
	default:
		fail("unknown mode %q", *mode)
	}

	if *verbose {
		st := sess.Stats()
		fmt.Fprintf(os.Stderr, "oracle: %d H calls (%d cached); PLI: %d entries, %d bytes live, %d evictions\n",
			st.HCalls, st.HCached, st.PLIStats.Entries, st.PLIStats.BytesLive, st.PLIStats.Evictions)
	}
	if *trace {
		if t := sess.Trace(); t != nil {
			fmt.Fprint(os.Stderr, t.String())
		}
	}

	// Mining is over: restore default signal handling so Ctrl-C now
	// terminates the process instead of feeding an already-consumed
	// context.
	interrupted := ctx.Err() != nil
	stop()

	if *withFDs {
		if interrupted {
			fmt.Fprintln(os.Stderr, "maimon: skipping FD/UCC baseline (interrupted)")
			return
		}
		fmt.Println("\nFD/UCC baseline (exact):")
		res := fd.NewMiner(r, fd.Options{}).Mine()
		fmt.Print(res.Summary(r.Names()))
	}
}

// printProgress renders one event as a stderr status line.
func printProgress(p maimon.Progress) {
	switch p.Phase {
	case "schemes":
		fmt.Fprintf(os.Stderr, "[%s] %d schemes from %d MVDs (%d candidates evaluated)\n",
			p.Phase, p.Schemes, p.MVDs, p.Candidates)
	default:
		fmt.Fprintf(os.Stderr, "[%s] pair %d/%d: %d separators, %d MVDs (%d candidates evaluated)\n",
			p.Phase, p.PairsDone, p.PairsTotal, p.Separators, p.MVDs, p.Candidates)
	}
}

// pickSchema parses the explicit -schema spec or mines schemes through
// the session and picks the one with the best storage savings.
func pickSchema(ctx context.Context, sess *maimon.Session, spec string, opts []maimon.Option) (maimon.Schema, error) {
	r := sess.Relation()
	if spec != "" {
		var bags []maimon.AttrSet
		for _, part := range strings.Split(spec, ";") {
			b, err := r.ParseAttrs(strings.TrimSpace(part))
			if err != nil {
				return maimon.Schema{}, err
			}
			bags = append(bags, b)
		}
		return maimon.NewSchema(bags)
	}
	schemes, _, _ := sess.MineSchemes(ctx, opts...)
	if len(schemes) == 0 {
		return maimon.Schema{}, fmt.Errorf("no schemes mined; raise -epsilon or pass -schema")
	}
	best := schemes[0]
	bestSavings := -1e18
	for _, s := range schemes {
		met, err := sess.Analyze(s.Schema)
		if err != nil {
			continue
		}
		if met.SavingsPct > bestSavings {
			best, bestSavings = s, met.SavingsPct
		}
	}
	return best.Schema, nil
}

func warnTimeout(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: %v (results are partial)\n", err)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "maimon: "+format+"\n", args...)
	os.Exit(1)
}
