// Command maimon mines approximate MVDs and acyclic schemes from a CSV
// relation, the end-to-end workflow of the paper.
//
// Usage:
//
//	maimon -input data.csv [-header] [-epsilon 0.1] [-mode schemes]
//	       [-timeout 30s] [-max-schemes 50] [-fds]
//
// Modes:
//
//	minseps   print the minimal separators per attribute pair
//	mvds      print Mε, the full ε-MVDs with minimal separator keys
//	schemes   print mined acyclic schemes ranked by storage savings,
//	          with J, savings S%, spurious-tuple rate E% and width
//	decompose mine (or take -schema), pick the best scheme by savings,
//	          and write one CSV per relation into -out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	maimon "repro"
	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/fd"
)

func main() {
	var (
		input      = flag.String("input", "", "input CSV file (required)")
		header     = flag.Bool("header", true, "first CSV record is the header")
		epsilon    = flag.Float64("epsilon", 0, "approximation threshold ε in bits")
		mode       = flag.String("mode", "schemes", "minseps | mvds | schemes | decompose")
		timeout    = flag.Duration("timeout", time.Minute, "mining time budget (0 = unlimited)")
		maxSchemes = flag.Int("max-schemes", 100, "cap on schemes enumerated (0 = all)")
		withFDs    = flag.Bool("fds", false, "also mine exact FDs/UCCs (baseline)")
		schemaSpec = flag.String("schema", "", "decompose mode: explicit schema, bags separated by ';' (e.g. \"A,B,D;A,C,D;B,D,E;A,F\")")
		outDir     = flag.String("out", "decomposed", "decompose mode: output directory")
		rank       = flag.String("rank", "savings", "schemes mode ordering: savings | j | relations | width")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}
	r, err := maimon.LoadCSV(*input, *header)
	if err != nil {
		fail("loading %s: %v", *input, err)
	}
	fmt.Printf("relation: %d rows × %d columns (%s)\n", r.NumRows(), r.NumCols(), *input)

	// The timeout rides on a signal-aware context, so Ctrl-C interrupts a
	// long mine and still prints the partial results gathered so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := maimon.Options{Epsilon: *epsilon, MaxSchemes: *maxSchemes}
	m := maimon.NewMiner(r, opts).WithContext(ctx)

	switch *mode {
	case "minseps":
		res := m.MineMinSepsAll()
		for _, p := range res.SortedPairs() {
			fmt.Printf("(%s, %s):", r.Name(p.A), r.Name(p.B))
			for _, s := range res.MinSeps[p] {
				fmt.Printf(" {%s}", s.Format(r.Names()))
			}
			fmt.Println()
		}
		fmt.Printf("%d minimal separators total\n", res.NumMinSeps())
		warnTimeout(res.Err)
	case "mvds":
		res := m.MineMVDs()
		for _, phi := range res.MVDs {
			fmt.Printf("  %-40s J=%.4f\n", phi.Format(r.Names()), m.J(phi))
		}
		fmt.Printf("%d full ε-MVDs (ε=%.3f)\n", len(res.MVDs), *epsilon)
		warnTimeout(res.Err)
	case "schemes":
		schemes, res := m.MineSchemes(*maxSchemes)
		type row struct {
			s   *core.Scheme
			met decompose.Metrics
		}
		var rows []row
		for _, s := range schemes {
			met, err := maimon.Analyze(r, s.Schema)
			if err != nil {
				continue
			}
			rows = append(rows, row{s, met})
		}
		switch *rank {
		case "savings":
			sort.Slice(rows, func(i, j int) bool {
				return rows[i].met.SavingsPct > rows[j].met.SavingsPct
			})
		case "j":
			sort.Slice(rows, func(i, j int) bool {
				return core.RankByJ.Less(rows[i].s, rows[j].s)
			})
		case "relations":
			sort.Slice(rows, func(i, j int) bool {
				return core.RankByRelations.Less(rows[i].s, rows[j].s)
			})
		case "width":
			sort.Slice(rows, func(i, j int) bool {
				return core.RankByWidth.Less(rows[i].s, rows[j].s)
			})
		default:
			fail("unknown rank %q", *rank)
		}
		fmt.Printf("%-8s %-8s %-9s %-3s %-6s  %s\n", "J", "S[%]", "E[%]", "m", "width", "schema")
		for _, rw := range rows {
			fmt.Printf("%-8.3f %-8.1f %-9.2f %-3d %-6d  %s\n",
				rw.s.J, rw.met.SavingsPct, rw.met.SpuriousPct,
				rw.s.M(), rw.s.Schema.Width(), rw.s.Schema.Format(r.Names()))
		}
		fmt.Printf("%d schemes from %d full MVDs (ε=%.3f)\n", len(rows), len(res.MVDs), *epsilon)
		warnTimeout(res.Err)
	case "decompose":
		sch, err := pickSchema(r, m, *schemaSpec, *maxSchemes)
		if err != nil {
			fail("%v", err)
		}
		d, err := decompose.Decompose(r, sch)
		if err != nil {
			fail("%v", err)
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail("%v", err)
		}
		if err := d.WriteCSVs(*outDir); err != nil {
			fail("%v", err)
		}
		met, err := maimon.Analyze(r, sch)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("decomposed into %d relations under %s/ (S=%.1f%%, E=%.2f%%)\n",
			sch.M(), *outDir, met.SavingsPct, met.SpuriousPct)
		fmt.Printf("schema: %s\n", sch.Format(r.Names()))
	default:
		fail("unknown mode %q", *mode)
	}

	// Mining is over: restore default signal handling so Ctrl-C now
	// terminates the process instead of feeding an already-consumed
	// context.
	interrupted := ctx.Err() != nil
	stop()

	if *withFDs {
		if interrupted {
			fmt.Fprintln(os.Stderr, "maimon: skipping FD/UCC baseline (interrupted)")
			return
		}
		fmt.Println("\nFD/UCC baseline (exact):")
		res := fd.NewMiner(r, fd.Options{}).Mine()
		fmt.Print(res.Summary(r.Names()))
	}
}

// pickSchema parses the explicit -schema spec or mines schemes and picks
// the one with the best storage savings.
func pickSchema(r *maimon.Relation, m *core.Miner, spec string, maxSchemes int) (maimon.Schema, error) {
	if spec != "" {
		var bags []maimon.AttrSet
		for _, part := range strings.Split(spec, ";") {
			b, err := r.ParseAttrs(strings.TrimSpace(part))
			if err != nil {
				return maimon.Schema{}, err
			}
			bags = append(bags, b)
		}
		return maimon.NewSchema(bags)
	}
	schemes, _ := m.MineSchemes(maxSchemes)
	if len(schemes) == 0 {
		return maimon.Schema{}, fmt.Errorf("no schemes mined; raise -epsilon or pass -schema")
	}
	best := schemes[0]
	bestSavings := -1e18
	for _, s := range schemes {
		met, err := maimon.Analyze(r, s.Schema)
		if err != nil {
			continue
		}
		if met.SavingsPct > bestSavings {
			best, bestSavings = s, met.SavingsPct
		}
	}
	return best.Schema, nil
}

func warnTimeout(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: %v (results are partial)\n", err)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "maimon: "+format+"\n", args...)
	os.Exit(1)
}
