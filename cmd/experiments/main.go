// Command experiments regenerates the paper's tables and figures on the
// synthetic analog datasets (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured notes). The ε-sweep drivers build
// one entropy oracle per dataset and reuse it across the whole sweep —
// the warm-session pattern of the public API — so a sweep pays the PLI
// and entropy cost once instead of once per threshold.
//
// Usage:
//
//	experiments [-budget 5s] [-scale 10000] table2
//	experiments fig10 fig12 fig13 fig14 fig15 fig18 ablation
//	experiments all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/distbench"
)

var drivers = []struct {
	name string
	run  func(experiments.Config) string
	desc string
}{
	{"table2", experiments.Table2, "Table 2: full-MVD mining at ε=0 on 20 datasets"},
	{"fig10", experiments.Fig10Nursery, "Figs. 10-11: Nursery schemes, savings vs spurious, pareto front"},
	{"fig12", experiments.Fig12SpuriousVsJ, "Fig. 12: spurious tuples vs J-measure"},
	{"fig13", experiments.Fig13Rows, "Fig. 13: row scalability of minimal-separator mining"},
	{"fig14", experiments.Fig14Cols, "Fig. 14: column scalability"},
	{"fig15", experiments.Fig15Quality, "Fig. 15: scheme quality vs ε"},
	{"fig18", experiments.Fig18FullMVDs, "Fig. 18: full MVDs per ε and generation rate"},
	{"ablation", runAblations, "Ablations: pairwise-consistency pruning; entropy engine"},
}

func runAblations(cfg experiments.Config) string {
	return experiments.AblationPairwiseConsistency(cfg) + "\n" + experiments.AblationEntropyEngine(cfg)
}

func main() {
	var (
		budget    = flag.Duration("budget", 5*time.Second, "time budget per mining invocation")
		scale     = flag.Int("scale", 0, "row cap for analog datasets (0 = 10000)")
		epsList   = flag.String("epsilons", "", "comma-separated ε sweep (default 0,0.05,0.1,0.2,0.3,0.4,0.5)")
		workers   = flag.Int("workers", 0, "parallel mining fan-out for the drivers (<= 1 = serial, the paper's setting)")
		benchJSON = flag.String("bench-json", "", "run the warm-parallel-vs-serial bench and write its rows to this JSON file")
		memJSON   = flag.String("bench-memory-json", "", "run the memory-budget sweep and write its rows to this JSON file")
		interJSON = flag.String("bench-intersect-json", "", "run the map-vs-arena intersection bench and write its rows to this JSON file")
		cacheJSON = flag.String("bench-cache-json", "", "run the eviction-policy sweep (clock vs gdsf under shrinking PLI budgets) and write its rows to this JSON file")
		spillJSON = flag.String("bench-spill-json", "", "run the spill-tier sweep (warm re-mines under a ⅛ budget, spill on vs off) and write its rows to this JSON file")
		distJSON  = flag.String("bench-dist-json", "", "run the distributed-mining bench (in-process worker fleet) and write its rows to this JSON file")
	)
	flag.Parse()
	cfg := experiments.Config{
		Out:     os.Stdout,
		Budget:  *budget,
		Scale:   *scale,
		Workers: *workers,
	}
	if *epsList != "" {
		for _, part := range strings.Split(*epsList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bad epsilon %q: %v\n", part, err)
				os.Exit(2)
			}
			cfg.Epsilons = append(cfg.Epsilons, v)
		}
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(cfg, *benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *memJSON != "" {
		if err := writeMemoryJSON(cfg, *memJSON); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *interJSON != "" {
		if err := writeIntersectJSON(cfg, *interJSON); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *cacheJSON != "" {
		if err := writeCacheJSON(cfg, *cacheJSON); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *spillJSON != "" {
		if err := writeSpillJSON(cfg, *spillJSON); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *distJSON != "" {
		if err := writeDistJSON(cfg, *distJSON); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("available experiments:")
		for _, d := range drivers {
			fmt.Printf("  %-9s %s\n", d.name, d.desc)
		}
		fmt.Println("  all       run everything")
		return
	}
	for _, arg := range args {
		if arg == "all" {
			for _, d := range drivers {
				banner(d.desc)
				d.run(cfg)
			}
			continue
		}
		found := false
		for _, d := range drivers {
			if d.name == arg {
				banner(d.desc)
				d.run(cfg)
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", arg)
			os.Exit(2)
		}
	}
}

// writeRowsJSON runs one machine-readable benchmark and writes its rows
// as indented JSON — the shared tail of every -bench-*-json flag, so the
// output contract (indentation, trailing newline, permissions, the
// "wrote N rows" confirmation) lives in one place.
func writeRowsJSON[Row any](path string, run func(experiments.Config) ([]Row, string, error), cfg experiments.Config) error {
	rows, _, err := run(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d bench rows to %s\n", len(rows), path)
	return nil
}

// writeBenchJSON runs the warm-parallel-vs-serial benchmark and records
// its machine-readable rows — {dataset, workers, wall_ms, h_calls,
// speedup} — so the perf trajectory of the parallel pipeline is tracked
// across commits (BENCH_parallel.json at the repo root).
func writeBenchJSON(cfg experiments.Config, path string) error {
	return writeRowsJSON(path, experiments.ParallelBench, cfg)
}

// writeMemoryJSON runs the memory-budget sweep — warm re-mines of the
// planted and nursery generators under shrinking PLI budgets — and
// records its machine-readable rows, {dataset, budget_bytes, wall_ms,
// evictions, h_calls, bytes_live, gomaxprocs, numcpu}, tracking what
// eviction pressure costs across commits (BENCH_memory.json at the repo
// root).
func writeMemoryJSON(cfg experiments.Config, path string) error {
	return writeRowsJSON(path, experiments.MemoryBench, cfg)
}

// writeIntersectJSON runs the intersection-engine benchmark — the
// historical hash-map grouping against the arena's dense count-then-fill
// path, on the planted and nursery generators — and records its
// machine-readable rows, {dataset, engine, wall_ms, allocs, bytes_alloc,
// gomaxprocs, numcpu}, so the allocation profile of the hot path is
// tracked across commits (BENCH_intersect.json at the repo root).
func writeIntersectJSON(cfg experiments.Config, path string) error {
	return writeRowsJSON(path, experiments.IntersectBench, cfg)
}

// writeCacheJSON runs the eviction-policy sweep — warm ε-sweeps of the
// planted and nursery generators under {clock, gdsf} × {unlimited, ½, ⅛}
// PLI budgets — and records its machine-readable rows, {dataset, policy,
// budget_bytes, wall_ms, evictions, recompute_bytes, h_calls,
// gomaxprocs, numcpu}, so what cost-aware eviction buys under memory
// pressure is tracked across commits (BENCH_cache.json at the repo
// root).
func writeCacheJSON(cfg experiments.Config, path string) error {
	return writeRowsJSON(path, experiments.CacheBench, cfg)
}

// writeSpillJSON runs the spill-tier sweep — warm ε-sweeps of the
// planted and nursery generators under a ⅛ PLI budget with the disk
// spill tier off (evictions drop, misses recompute) and on (expensive
// evictions demote, misses promote) — and records its machine-readable
// rows, {dataset, policy, budget_bytes, spill_on, wall_ms,
// recompute_bytes, evictions, demotions, spill_hits, spill_bytes,
// spill_read_ms, gomaxprocs, numcpu}, so what the tier saves the rebuild
// cascade is tracked across commits (BENCH_spill.json at the repo root).
// The run fails unless spill-on recomputes strictly fewer bytes than
// spill-off under the same budget.
func writeSpillJSON(cfg experiments.Config, path string) error {
	return writeRowsJSON(path, experiments.SpillBench, cfg)
}

// writeDistJSON runs the distributed-mining benchmark — cold in-process
// maimond worker fleets mined through the pair-sharding coordinator at
// fleet sizes 1..3, each cell with the entropy-memo exchange on and off
// — and records its machine-readable rows, {dataset, workers,
// memo_exchange, shards, wall_ms, local_ms, speedup, dispatches,
// retries, hedges, bytes_merged, h_calls, h_computed, memo_seeded,
// memo_merged, dup_avoided, mvds, gomaxprocs, numcpu}, so both the
// coordinator's overhead against a warm local mine and the duplicate
// entropy computes the exchange eliminates are tracked across commits
// (BENCH_dist.json at the repo root). The run fails unless the exchange
// strictly reduces fresh H computes at the largest fleet.
func writeDistJSON(cfg experiments.Config, path string) error {
	return writeRowsJSON(path, distbench.Run, cfg)
}

func banner(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", len(title)))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}
