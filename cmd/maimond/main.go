// Command maimond is the resident schema-mining service: each dataset is
// loaded, dictionary-encoded, and wrapped in a shared mining session
// once, so concurrent and successive jobs over a dataset reuse its warm
// entropy state; mining jobs run asynchronously on a bounded worker pool,
// results are cached per (session, ε, options), and everything is exposed
// over a JSON HTTP API.
//
// Usage:
//
//	maimond [-addr :8080] [-workers N] [-mine-workers 1] [-queue 256]
//	        [-job-timeout 0] [-cache-bytes 0] [-result-cache 256]
//	        [-load name=path.csv ...] [-nursery]
//
// API (versioned under /v1; the unversioned paths remain as aliases —
// see README.md for curl examples):
//
//	POST   /v1/datasets?name=N   upload a CSV body and register it
//	GET    /v1/datasets          list datasets
//	DELETE /v1/datasets/{name}   unregister a dataset
//	POST   /v1/jobs              submit a mining job
//	GET    /v1/jobs/{id}         poll status and live mining progress
//	GET    /v1/jobs/{id}/result  fetch schemes / MVDs / metrics when done
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/healthz           liveness, worker and cache counters
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	maimon "repro"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/service"
)

// loadFlags collects repeated -load name=path.csv values.
type loadFlags []string

func (l *loadFlags) String() string     { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var loads loadFlags
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		workers     = flag.Int("workers", 0, "mining worker pool size — concurrent jobs (0 = GOMAXPROCS)")
		mineWorkers = flag.Int("mine-workers", 1, "default per-job parallel fan-out (jobs may override with \"workers\"; capped at GOMAXPROCS)")
		queue       = flag.Int("queue", 256, "job queue depth (submits beyond it are rejected)")
		jobTimeout  = flag.Duration("job-timeout", 0, "default per-job mining timeout (0 = none)")
		maxJobs     = flag.Int("max-jobs", 1024, "job records retained; oldest finished jobs evicted beyond it")
		cacheBytes  = flag.Int64("cache-bytes", 0, "per-dataset PLI cache memory budget in bytes; cold partitions are evicted past it (0 = unlimited)")
		resultCache = flag.Int("result-cache", 0, "completed job results retained, LRU past the cap (0 = 256)")
		nursery     = flag.Bool("nursery", false, "preload the paper's nursery dataset as \"nursery\"")
	)
	flag.Var(&loads, "load", "preload a dataset: name=path.csv (repeatable)")
	flag.Parse()

	var sessOpts []maimon.Option
	if *cacheBytes > 0 {
		sessOpts = append(sessOpts, maimon.WithMemoryBudget(*cacheBytes))
	}
	reg := service.NewRegistry(sessOpts...)
	if *nursery {
		info, err := reg.Add("nursery", datagen.Nursery())
		if err != nil {
			log.Fatalf("maimond: %v", err)
		}
		log.Printf("loaded dataset %q: %d rows × %d cols", info.Name, info.Rows, info.Cols)
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("maimond: -load wants name=path.csv, got %q", spec)
		}
		r, err := relation.ReadCSVFile(path, true)
		if err != nil {
			log.Fatalf("maimond: loading %s: %v", path, err)
		}
		info, err := reg.Add(name, r)
		if err != nil {
			log.Fatalf("maimond: %v", err)
		}
		log.Printf("loaded dataset %q: %d rows × %d cols (%s)", info.Name, info.Rows, info.Cols, path)
	}

	mgr := service.NewManager(reg, service.Config{
		Workers:            *workers,
		MineWorkers:        *mineWorkers,
		QueueDepth:         *queue,
		DefaultTimeout:     *jobTimeout,
		MaxJobs:            *maxJobs,
		ResultCacheEntries: *resultCache,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("maimond listening on %s (%d workers)", *addr, mgr.Workers())

	select {
	case err := <-errc:
		log.Fatalf("maimond: %v", err)
	case <-ctx.Done():
	}
	log.Print("maimond: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "maimond: shutdown: %v\n", err)
	}
	mgr.Close() // cancels queued and running jobs, drains the pool
}
