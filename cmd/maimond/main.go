// Command maimond is the resident schema-mining service: each dataset is
// loaded, dictionary-encoded, and wrapped in a shared mining session
// once, so concurrent and successive jobs over a dataset reuse its warm
// entropy state; mining jobs run asynchronously on a bounded worker pool,
// results are cached per (session, ε, options), and everything is exposed
// over a JSON HTTP API.
//
// Usage:
//
//	maimond [-addr :8080] [-workers N] [-mine-workers 1] [-queue 256]
//	        [-job-timeout 0] [-cache-bytes 0] [-entropy-bytes 0]
//	        [-evict-policy clock] [-spill-dir ""] [-spill-bytes 0]
//	        [-result-cache 0]
//	        [-log-level info] [-log-json] [-debug-addr ""]
//	        [-load name=path.csv ...] [-nursery]
//	        [-coordinator http://w1:8080,http://w2:8080]
//	        [-shards-per-worker 4] [-hedge-quantile 0.9]
//	        [-dist-inflight 0] [-tenant-inflight 0] [-dist-mines 8]
//	        [-probe-interval 5s] [-memo-exchange] [-memo-seed-bytes 262144]
//	        [-memo-delta-bytes 262144]
//
// With -coordinator, the daemon additionally acts as the distributed
// mining coordinator: phase 1 of every job is sharded across the listed
// worker maimond instances (each of which must have the same datasets
// registered) and merged back byte-identically; phase 2 runs locally.
// Workers exchange entropy-memo entries through the coordinator by
// default (-memo-exchange=false disables): each shard response carries a
// byte-capped delta of freshly computed entropies, and later dispatches
// — retries and hedges included — seed their worker with the merge, so
// the fleet computes each shared entropy roughly once instead of once
// per worker. The exchange moves computes, never changes results.
// Any maimond serves the worker side automatically via POST /v1/shards.
// (The worker-URL flag is -coordinator, not -workers: -workers was
// already taken by the job pool size.)
//
// API (versioned under /v1; the unversioned paths remain as aliases —
// see README.md for curl examples):
//
//	POST   /v1/datasets?name=N   upload a CSV body and register it
//	GET    /v1/datasets          list datasets
//	DELETE /v1/datasets/{name}   unregister a dataset
//	POST   /v1/jobs              submit a mining job
//	GET    /v1/jobs/{id}         poll status and live mining progress
//	GET    /v1/jobs/{id}/result  fetch schemes / MVDs / metrics when done
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/healthz           liveness, worker and cache counters
//	GET    /v1/readyz            readiness (503 once shutting down)
//	GET    /metrics              Prometheus text exposition
//
// Observability: every job-lifecycle event is logged through log/slog
// with the job and dataset ids attached (-log-level trims it, -log-json
// switches to JSON lines for log shippers); /metrics exposes the
// registry of counters, gauges and latency histograms the service and
// its mining sessions maintain; -debug-addr starts a second, private
// listener serving net/http/pprof — keep it off public interfaces.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	maimon "repro"
	"repro/internal/datagen"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/service"
)

// loadFlags collects repeated -load name=path.csv values.
type loadFlags []string

func (l *loadFlags) String() string     { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error { *l = append(*l, v); return nil }

// newLogger builds the process logger from the flags: text to stderr by
// default, JSON lines with -log-json, threshold from -log-level.
func newLogger(level string, json bool) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h), nil
}

// debugServer serves net/http/pprof on its own mux — never the public
// one, so profiling endpoints can stay on a loopback-only address.
func debugServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
}

func main() {
	var loads loadFlags
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		workers      = flag.Int("workers", 0, "mining worker pool size — concurrent jobs (0 = GOMAXPROCS)")
		mineWorkers  = flag.Int("mine-workers", 1, "default per-job parallel fan-out (jobs may override with \"workers\"; capped at GOMAXPROCS)")
		queue        = flag.Int("queue", 256, "job queue depth (submits beyond it are rejected)")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job mining timeout (0 = none)")
		maxJobs      = flag.Int("max-jobs", 1024, "job records retained; oldest finished jobs evicted beyond it")
		cacheBytes   = flag.Int64("cache-bytes", 0, "per-dataset PLI cache memory budget in bytes; cold partitions are evicted past it (0 = unlimited)")
		entropyBytes = flag.Int64("entropy-bytes", 0, "per-dataset entropy-memo memory budget in bytes; cold entropies are evicted past it (0 = unlimited)")
		evictPolicy  = flag.String("evict-policy", "clock", "PLI cache eviction policy under -cache-bytes: clock (recency) or gdsf (cost-aware)")
		spillDir     = flag.String("spill-dir", "", "disk spill tier root: evicted PLI partitions worth re-reading are demoted into per-dataset segment stores under this directory instead of dropped; re-opened warm on restart (empty = disabled)")
		spillBytes   = flag.Int64("spill-bytes", 0, "per-dataset on-disk budget of the spill tier; oldest segments deleted past it (0 = unlimited)")
		resultCache  = flag.Int("result-cache", 0, "completed job results retained, LRU past the cap (0 = default 256, -1 = disable result caching)")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON lines instead of text")
		debugAddr    = flag.String("debug-addr", "", "listen address for the net/http/pprof debug server (empty = disabled; bind to loopback)")
		nursery      = flag.Bool("nursery", false, "preload the paper's nursery dataset as \"nursery\"")

		coordinator     = flag.String("coordinator", "", "comma-separated worker base URLs; when set, phase 1 of every job is sharded across them (distributed mining)")
		shardsPerWorker = flag.Int("shards-per-worker", 4, "distributed: shards per worker (numShards = this × workers)")
		hedgeQuantile   = flag.Float64("hedge-quantile", 0.9, "distributed: completed-shard latency quantile after which a straggler shard is hedged to a second worker (≤0 disables)")
		distInflight    = flag.Int("dist-inflight", 0, "distributed: max concurrent shard RPCs (0 = 4 × workers)")
		tenantInflight  = flag.Int("tenant-inflight", 0, "distributed: per-tenant concurrent shard RPC budget (0 = same as -dist-inflight)")
		distMines       = flag.Int("dist-mines", 8, "distributed: max concurrent distributed mines; beyond it submits fail busy")
		probeInterval   = flag.Duration("probe-interval", 5*time.Second, "distributed: worker /v1/readyz probe period (negative disables active probing)")
		memoExchange    = flag.Bool("memo-exchange", true, "distributed: exchange entropy-memo entries between workers via shard responses and dispatch seeds")
		memoSeedBytes   = flag.Int64("memo-seed-bytes", 256<<10, "distributed: max accounted bytes of memo seed per shard dispatch")
		memoDeltaBytes  = flag.Int64("memo-delta-bytes", 256<<10, "distributed: max accounted bytes of memo delta per shard response")
	)
	flag.Var(&loads, "load", "preload a dataset: name=path.csv (repeatable)")
	flag.Parse()

	logger, err := newLogger(*logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "maimond: %v\n", err)
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	// The spill tier (and anything else below the service layer) logs rare
	// events through the default logger; route them to the process one.
	slog.SetDefault(logger)
	tel := service.NewTelemetry(obs.NewRegistry(), logger)

	var sessOpts []maimon.Option
	if *cacheBytes > 0 {
		sessOpts = append(sessOpts, maimon.WithMemoryBudget(*cacheBytes))
	}
	if *entropyBytes > 0 {
		sessOpts = append(sessOpts, maimon.WithEntropyBudget(*entropyBytes))
	}
	switch *evictPolicy {
	case "", "clock":
	case "gdsf":
		sessOpts = append(sessOpts, maimon.WithEvictionPolicy(maimon.PolicyGDSF))
	default:
		fatal("unknown -evict-policy (want clock or gdsf)", "policy", *evictPolicy)
	}
	reg := service.NewRegistry(sessOpts...)
	if *spillDir != "" {
		reg.SetSpill(*spillDir, *spillBytes)
		logger.Info("spill tier enabled", "dir", *spillDir, "budget_bytes", *spillBytes)
	}
	if *nursery {
		info, err := reg.Add("nursery", datagen.Nursery())
		if err != nil {
			fatal("loading nursery dataset", "error", err)
		}
		logger.Info("dataset loaded", "dataset", info.Name, "rows", info.Rows, "cols", info.Cols)
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal("-load wants name=path.csv", "got", spec)
		}
		r, err := relation.ReadCSVFile(path, true)
		if err != nil {
			fatal("loading dataset file", "path", path, "error", err)
		}
		info, err := reg.Add(name, r)
		if err != nil {
			fatal("registering dataset", "dataset", name, "error", err)
		}
		logger.Info("dataset loaded", "dataset", info.Name, "rows", info.Rows, "cols", info.Cols, "path", path)
	}

	var coord *dist.Coordinator
	if *coordinator != "" {
		var err error
		coord, err = dist.New(dist.Config{
			Workers:         strings.Split(*coordinator, ","),
			ShardsPerWorker: *shardsPerWorker,
			HedgeQuantile:   *hedgeQuantile,
			MaxInflight:     *distInflight,
			TenantInflight:  *tenantInflight,
			MaxMines:        *distMines,
			ProbeInterval:   *probeInterval,
			MemoExchangeOff: !*memoExchange,
			MemoSeedBytes:   *memoSeedBytes,
			MemoDeltaBytes:  *memoDeltaBytes,
			Registry:        tel.Registry(),
			Logger:          logger,
		})
		if err != nil {
			fatal("building coordinator", "error", err)
		}
		defer coord.Close()
		logger.Info("distributed mining enabled",
			"workers", coord.WorkerURLs(), "shards", coord.NumShards(),
			"memo_exchange", *memoExchange)
	}

	mgr := service.NewManager(reg, service.Config{
		Workers:            *workers,
		MineWorkers:        *mineWorkers,
		QueueDepth:         *queue,
		DefaultTimeout:     *jobTimeout,
		MaxJobs:            *maxJobs,
		ResultCacheEntries: *resultCache,
		Telemetry:          tel,
		Coordinator:        coord,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if *debugAddr != "" {
		dbg := debugServer(*debugAddr)
		go func() {
			logger.Info("pprof debug server listening", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("pprof debug server", "error", err)
			}
		}()
		defer dbg.Close()
	}
	logger.Info("maimond listening", "addr", *addr, "workers", mgr.Workers())

	select {
	case err := <-errc:
		fatal("serving", "error", err)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("shutdown", "error", err)
	}
	mgr.Close() // cancels queued and running jobs, drains the pool
	// With the pool drained no job can reach a session; persist every
	// spill index so the next start re-opens the segments warm.
	if err := reg.CloseAll(); err != nil {
		logger.Error("closing sessions", "error", err)
	}
}
